//! Structured lifecycle events, the listener API, and the event bus.
//!
//! Every structural transition in an engine — memtable seal, flush,
//! merge, scan-merge, GC, split, write stalls, health transitions, job
//! retry/quarantine, WAL retirement — is published as an [`Event`]: a
//! globally sequence-numbered record carrying the files and bytes
//! involved plus a **`cause`** field naming the seq of the event that
//! triggered it. Causes make chains reconstructable offline: the seal
//! that produced a flush, the flush that tipped a merge, the merge that
//! made GC due.
//!
//! Delivery is a RocksDB-style listener API: implement [`EventListener`],
//! register it in the options, and the engine invokes it synchronously at
//! the publishing site. The contract:
//!
//! * **Synchronous and fast.** Listeners run on the publishing thread;
//!   slow listeners slow the database.
//! * **No re-entrancy.** The publishing site may hold engine locks;
//!   listeners must not call back into the database.
//! * **Panic-isolated.** A panicking listener is caught, counted
//!   ([`EventBus::listener_panics`]), and never poisons the engine.
//!
//! Events serialize as single-line JSON (hand-rolled — the workspace is
//! offline) for the persistent `EVENTS` journal, which is itself just a
//! listener.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Injectable clock for event timestamps (microseconds, arbitrary
/// monotonic origin). Kept separate from the metrics clock on purpose:
/// publishing an event must not advance a manual metrics clock.
pub type EventClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// What happened. Start/finish/abort triples cover every structural op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Active memtable frozen; its WAL is preserved until the flush lands.
    Seal,
    /// Flush of a sealed memtable began.
    FlushStart,
    /// Flush committed; a new UnsortedStore table exists.
    FlushFinish,
    /// Flush failed before committing.
    FlushAbort,
    /// UnsortedStore → SortedStore merge began.
    MergeStart,
    /// Merge committed.
    MergeFinish,
    /// Merge failed before committing.
    MergeAbort,
    /// Size-triggered (scan-optimization) merge began.
    ScanMergeStart,
    /// Scan-merge committed.
    ScanMergeFinish,
    /// Scan-merge failed before committing.
    ScanMergeAbort,
    /// Value-log garbage collection began.
    GcStart,
    /// GC committed.
    GcFinish,
    /// GC failed before committing.
    GcAbort,
    /// Partition split began.
    SplitStart,
    /// Split committed; two child partitions exist.
    SplitFinish,
    /// Split failed before committing.
    SplitAbort,
    /// Writers started braking (slowdown or stop).
    StallBegin,
    /// Writers released.
    StallEnd,
    /// Health state machine moved (detail holds `from->to`).
    HealthChange,
    /// A failed maintenance job was scheduled for retry.
    JobRetry,
    /// A failed maintenance job exhausted its retry budget.
    JobQuarantine,
    /// A WAL file became obsolete and was deleted.
    WalRetired,
}

/// Number of event kinds.
pub const EVENT_KIND_COUNT: usize = 22;

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; EVENT_KIND_COUNT] = [
        EventKind::Seal,
        EventKind::FlushStart,
        EventKind::FlushFinish,
        EventKind::FlushAbort,
        EventKind::MergeStart,
        EventKind::MergeFinish,
        EventKind::MergeAbort,
        EventKind::ScanMergeStart,
        EventKind::ScanMergeFinish,
        EventKind::ScanMergeAbort,
        EventKind::GcStart,
        EventKind::GcFinish,
        EventKind::GcAbort,
        EventKind::SplitStart,
        EventKind::SplitFinish,
        EventKind::SplitAbort,
        EventKind::StallBegin,
        EventKind::StallEnd,
        EventKind::HealthChange,
        EventKind::JobRetry,
        EventKind::JobQuarantine,
        EventKind::WalRetired,
    ];

    /// Stable snake_case name used in the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Seal => "seal",
            EventKind::FlushStart => "flush_start",
            EventKind::FlushFinish => "flush_finish",
            EventKind::FlushAbort => "flush_abort",
            EventKind::MergeStart => "merge_start",
            EventKind::MergeFinish => "merge_finish",
            EventKind::MergeAbort => "merge_abort",
            EventKind::ScanMergeStart => "scan_merge_start",
            EventKind::ScanMergeFinish => "scan_merge_finish",
            EventKind::ScanMergeAbort => "scan_merge_abort",
            EventKind::GcStart => "gc_start",
            EventKind::GcFinish => "gc_finish",
            EventKind::GcAbort => "gc_abort",
            EventKind::SplitStart => "split_start",
            EventKind::SplitFinish => "split_finish",
            EventKind::SplitAbort => "split_abort",
            EventKind::StallBegin => "stall_begin",
            EventKind::StallEnd => "stall_end",
            EventKind::HealthChange => "health_change",
            EventKind::JobRetry => "job_retry",
            EventKind::JobQuarantine => "job_quarantine",
            EventKind::WalRetired => "wal_retired",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotonic across journal rotations).
    pub seq: u64,
    /// Event-clock reading when the event was published.
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
    /// Partition the event concerns (parent id for splits).
    pub partition: u32,
    /// Seq of the event that triggered this one, if any. Start events
    /// point at their trigger (e.g. the flush-finish that tipped a
    /// merge); finish/abort events point at their own start.
    pub cause: Option<u64>,
    /// Input file numbers (WALs for flushes, tables for merges, value
    /// logs for GC).
    pub inputs: Vec<u64>,
    /// Output file numbers produced by the operation.
    pub outputs: Vec<u64>,
    /// Bytes processed or produced (op-specific; 0 when meaningless).
    pub bytes: u64,
    /// Free-form context (health transitions, error strings, …).
    pub detail: String,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl Event {
    /// Encode as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.detail.len());
        out.push_str(&format!(
            "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"partition\":{}",
            self.seq,
            self.at_micros,
            self.kind.name(),
            self.partition
        ));
        if let Some(c) = self.cause {
            out.push_str(&format!(",\"cause\":{c}"));
        }
        let list = |out: &mut String, name: &str, xs: &[u64]| {
            out.push_str(&format!(",\"{name}\":["));
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&x.to_string());
            }
            out.push(']');
        };
        list(&mut out, "inputs", &self.inputs);
        list(&mut out, "outputs", &self.outputs);
        out.push_str(&format!(",\"bytes\":{},\"detail\":\"", self.bytes));
        escape_json(&self.detail, &mut out);
        out.push_str("\"}");
        out
    }

    /// Decode one JSON line written by [`Event::to_json`]. Returns `None`
    /// on any malformed input (torn tail, corruption) — callers truncate
    /// from the first bad line.
    pub fn parse_json(line: &str) -> Option<Event> {
        let mut p = JsonParser {
            b: line.trim().as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        let mut ev = Event {
            seq: u64::MAX,
            at_micros: 0,
            kind: EventKind::Seal,
            partition: 0,
            cause: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
            bytes: 0,
            detail: String::new(),
        };
        let mut have_seq = false;
        let mut have_kind = false;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "seq" => {
                    ev.seq = p.number()?;
                    have_seq = true;
                }
                "at_us" => ev.at_micros = p.number()?,
                "kind" => {
                    ev.kind = EventKind::parse(&p.string()?)?;
                    have_kind = true;
                }
                "partition" => ev.partition = u32::try_from(p.number()?).ok()?,
                "cause" => ev.cause = p.nullable_number()?,
                "inputs" => ev.inputs = p.number_array()?,
                "outputs" => ev.outputs = p.number_array()?,
                "bytes" => ev.bytes = p.number()?,
                "detail" => ev.detail = p.string()?,
                _ => return None,
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.expect(b'}')?;
                break;
            }
        }
        p.skip_ws();
        (p.pos == p.b.len() && have_seq && have_kind).then_some(ev)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={}us {} p{}",
            self.seq, self.at_micros, self.kind, self.partition
        )?;
        if let Some(c) = self.cause {
            write!(f, " cause=#{c}")?;
        }
        if !self.inputs.is_empty() {
            write!(f, " in={:?}", self.inputs)?;
        }
        if !self.outputs.is_empty() {
            write!(f, " out={:?}", self.outputs)?;
        }
        if self.bytes > 0 {
            write!(f, " bytes={}", self.bytes)?;
        }
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        Ok(())
    }
}

/// Minimal scanner for the flat JSON objects this module writes.
struct JsonParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.pos < self.b.len() && self.b[self.pos] == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        self.eat(c).then_some(())
    }

    fn number(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn nullable_number(&mut self) -> Option<Option<u64>> {
        if self.b[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Some(None)
        } else {
            self.number().map(Some)
        }
    }

    fn number_array(&mut self) -> Option<Vec<u64>> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Some(out);
        }
        loop {
            self.skip_ws();
            out.push(self.number()?);
            self.skip_ws();
            if self.eat(b']') {
                return Some(out);
            }
            self.expect(b',')?;
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.pos)?;
            self.pos += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.pos)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.b.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full sequence.
                    let start = self.pos - 1;
                    while self.pos < self.b.len() && self.b[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.pos]).ok()?);
                }
            }
        }
    }
}

/// Receiver for lifecycle events. See the module docs for the contract:
/// synchronous, fast, no re-entrancy into the database, panic-isolated.
pub trait EventListener: Send + Sync {
    /// Called once per published event, on the publishing thread.
    fn on_event(&self, event: &Event);
}

/// Listener registration handle for options structs (a plain
/// `Vec<Arc<dyn EventListener>>` with a `Debug` impl that does not
/// require listeners to be `Debug`).
#[derive(Clone, Default)]
pub struct Listeners(pub Vec<Arc<dyn EventListener>>);

impl Listeners {
    /// Register a listener.
    pub fn push(&mut self, l: Arc<dyn EventListener>) {
        self.0.push(l);
    }

    /// True when no listeners are registered.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Listeners {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Listeners({})", self.0.len())
    }
}

/// Assigns sequence numbers and dispatches events to listeners. With no
/// listeners, publishing is a single atomic increment: no clock read, no
/// allocation beyond what the caller already built.
pub struct EventBus {
    listeners: Vec<Arc<dyn EventListener>>,
    next_seq: AtomicU64,
    listener_panics: AtomicU64,
    origin: Instant,
    has_manual_clock: AtomicBool,
    clock: RwLock<Option<EventClock>>,
}

impl EventBus {
    /// Create a bus dispatching to `listeners`, numbering events from
    /// `first_seq` (a reopened journal continues its numbering).
    pub fn new(listeners: Vec<Arc<dyn EventListener>>, first_seq: u64) -> Arc<EventBus> {
        Arc::new(EventBus {
            listeners,
            next_seq: AtomicU64::new(first_seq),
            listener_panics: AtomicU64::new(0),
            origin: Instant::now(),
            has_manual_clock: AtomicBool::new(false),
            clock: RwLock::new(None),
        })
    }

    /// True when at least one listener is registered. Callers may skip
    /// building expensive event details when false.
    pub fn has_listeners(&self) -> bool {
        !self.listeners.is_empty()
    }

    /// Listener invocations that panicked (caught and discarded).
    pub fn listener_panics(&self) -> u64 {
        self.listener_panics.load(Ordering::Relaxed)
    }

    /// Install a manual event clock (or restore the real one with `None`).
    pub fn set_clock(&self, clock: Option<EventClock>) {
        let mut guard = self.clock.write().expect("event clock lock poisoned");
        self.has_manual_clock
            .store(clock.is_some(), Ordering::Release);
        *guard = clock;
    }

    fn now_micros(&self) -> u64 {
        if self.has_manual_clock.load(Ordering::Acquire) {
            if let Some(clock) = self
                .clock
                .read()
                .expect("event clock lock poisoned")
                .as_ref()
            {
                return clock();
            }
        }
        self.origin.elapsed().as_micros() as u64
    }

    /// Publish an event: assign the next seq, stamp the time, dispatch to
    /// every listener (panics caught and counted), return the seq. With
    /// no listeners only the seq is assigned.
    #[allow(clippy::too_many_arguments)]
    pub fn publish(
        &self,
        kind: EventKind,
        partition: u32,
        cause: Option<u64>,
        inputs: Vec<u64>,
        outputs: Vec<u64>,
        bytes: u64,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if self.listeners.is_empty() {
            return seq;
        }
        let event = Event {
            seq,
            at_micros: self.now_micros(),
            kind,
            partition,
            cause,
            inputs,
            outputs,
            bytes,
            detail: detail.into(),
        };
        for l in &self.listeners {
            if catch_unwind(AssertUnwindSafe(|| l.on_event(&event))).is_err() {
                self.listener_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
        seq
    }
}

/// Reconstruct the causal ancestry of `seq`: the chain of events from the
/// root cause down to (and including) `seq`, oldest first. Events missing
/// from `events` (rotated away) end the walk; cycles cannot occur with
/// well-formed causes but are guarded against anyway.
pub fn causal_chain(events: &[Event], seq: u64) -> Vec<Event> {
    let mut chain = Vec::new();
    let mut cur = Some(seq);
    while let Some(s) = cur {
        match events.iter().find(|e| e.seq == s) {
            Some(e) => {
                cur = e.cause.filter(|c| *c < s);
                chain.push(e.clone());
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn ev(seq: u64, kind: EventKind, cause: Option<u64>) -> Event {
        Event {
            seq,
            at_micros: seq * 10,
            kind,
            partition: 1,
            cause,
            inputs: vec![3, 4],
            outputs: vec![7],
            bytes: 512,
            detail: "x=\"1\"\nπ".to_string(),
        }
    }

    #[test]
    fn json_round_trip() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            let e = ev(i as u64, kind, if i % 2 == 0 { None } else { Some(3) });
            let line = e.to_json();
            assert!(!line.contains('\n'));
            assert_eq!(Event::parse_json(&line), Some(e));
        }
        let empty = Event {
            seq: 0,
            at_micros: 0,
            kind: EventKind::Seal,
            partition: 0,
            cause: None,
            inputs: vec![],
            outputs: vec![],
            bytes: 0,
            detail: String::new(),
        };
        assert_eq!(Event::parse_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn malformed_lines_rejected() {
        let good = ev(1, EventKind::FlushStart, Some(0)).to_json();
        for bad in [
            "",
            "{",
            "not json",
            "{\"seq\":1}",                    // missing kind
            "{\"kind\":\"flush_start\"}",     // missing seq
            "{\"seq\":1,\"kind\":\"nope\"}",  // unknown kind
            "{\"seq\":1,\"kind\":\"seal\"}x", // trailing garbage
            &good[..good.len() - 5],          // torn tail
        ] {
            assert_eq!(Event::parse_json(bad), None, "accepted {bad:?}");
        }
    }

    struct Recorder(Mutex<Vec<u64>>);
    impl EventListener for Recorder {
        fn on_event(&self, e: &Event) {
            self.0.lock().unwrap().push(e.seq);
        }
    }

    struct Panicker;
    impl EventListener for Panicker {
        fn on_event(&self, _: &Event) {
            panic!("listener bug");
        }
    }

    #[test]
    fn bus_numbers_dispatches_and_isolates_panics() {
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let bus = EventBus::new(vec![Arc::new(Panicker), rec.clone()], 5);
        let a = bus.publish(EventKind::Seal, 0, None, vec![], vec![], 0, "");
        let b = bus.publish(EventKind::FlushStart, 0, Some(a), vec![], vec![], 0, "");
        assert_eq!((a, b), (5, 6));
        // The panicking listener never blocks the one after it.
        assert_eq!(*rec.0.lock().unwrap(), vec![5, 6]);
        assert_eq!(bus.listener_panics(), 2);
    }

    #[test]
    fn no_listener_publish_assigns_seq_only() {
        let bus = EventBus::new(vec![], 1);
        assert!(!bus.has_listeners());
        assert_eq!(
            bus.publish(EventKind::Seal, 0, None, vec![], vec![], 0, ""),
            1
        );
        assert_eq!(
            bus.publish(EventKind::StallBegin, 0, None, vec![], vec![], 0, ""),
            2
        );
    }

    #[test]
    fn causal_chain_walks_to_root() {
        let events = vec![
            ev(1, EventKind::Seal, None),
            ev(2, EventKind::FlushStart, Some(1)),
            ev(3, EventKind::FlushFinish, Some(2)),
            ev(4, EventKind::MergeStart, Some(3)),
            ev(5, EventKind::MergeFinish, Some(4)),
        ];
        let chain = causal_chain(&events, 5);
        let kinds: Vec<EventKind> = chain.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Seal,
                EventKind::FlushStart,
                EventKind::FlushFinish,
                EventKind::MergeStart,
                EventKind::MergeFinish
            ]
        );
        // Missing ancestor ends the walk instead of looping.
        let partial = causal_chain(&events[2..], 5);
        assert_eq!(partial.len(), 3);
        assert_eq!(causal_chain(&events, 99), Vec::<Event>::new());
    }
}
