//! Unified observability substrate: a lock-free metrics registry with
//! atomic counters, gauges, and fixed-bucket log-scale latency histograms,
//! plus a bounded in-memory ring of structured operation trace events.
//!
//! Every engine in the workspace (UniKV, the LSM baselines, the hash-store
//! baseline) reports through the same family names, so cross-engine runs
//! are directly comparable. Two properties are load-bearing:
//!
//! * **Determinism under test.** Latencies come from an injectable
//!   monotonic clock ([`MetricsRegistry::set_clock`]). A test installs a
//!   manual clock that advances a fixed step per reading; every timed
//!   operation reads the clock exactly twice (start and end), so recorded
//!   durations — and therefore bucket counts and quantiles — are exact.
//! * **No overhead when disabled.** Every record path first checks one
//!   relaxed atomic bool and returns without locking, allocating, or
//!   reading the clock.
//!
//! Snapshots are plain data and merge associatively (bucket-wise for
//! histograms), so per-partition or per-engine registries can be folded
//! into one report.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Injectable clock: returns a monotonic timestamp in **microseconds**
/// from an arbitrary origin. Mirrors `MaintClock` in the core crate.
pub type MetricsClock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Number of histogram buckets. Bucket 0 holds the value `0`; bucket `i`
/// (for `1 <= i < HISTOGRAM_BUCKETS-1`) holds values in `[2^(i-1), 2^i - 1]`;
/// the last bucket absorbs everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Map a recorded value to its bucket index (log-scale, powers of two).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (used as the quantile estimate).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

/// A monotonically increasing counter handle. Cheap to clone; all clones
/// share the same cell and the registry's enabled flag.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `v` (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (e.g. queue depth).
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log-scale histogram handle (latencies in microseconds,
/// but any `u64` works). Lock-free; snapshots merge bucket-wise.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation (no-op while the registry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
            buckets: self
                .core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Plain-data snapshot of one histogram; merges associatively.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Per-bucket observation counts (`HISTOGRAM_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (bucket-wise addition; max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `ceil(q * count)`-th observation, capped at the exact `max`.
    /// Deterministic given deterministic inputs; `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Plain-data snapshot of a whole registry. Merging two snapshots (e.g.
/// from per-partition registries) is associative and commutative:
/// counters and gauges add, histograms merge bucket-wise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter families by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge families by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram families by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// True when every family is zero/empty.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|v| *v == 0)
            && self.gauges.values().all(|v| *v == 0)
            && self.histograms.values().all(|h| h.is_empty())
    }

    /// Human-readable report. Every registered family appears, even when
    /// zero — report-completeness checks rely on this.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("  {name:<28} {v}\n"));
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<28} {v}\n"));
            }
        }
        out.push_str("== histograms (us) ==\n");
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name:<28} count={} p50={} p95={} p99={} max={} mean={:.1}\n",
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max,
                h.mean(),
            ));
        }
        out
    }

    /// Stable machine-readable report: one tab-separated line per family.
    ///
    /// `counter\t<name>\t<value>`, `gauge\t<name>\t<value>`,
    /// `histogram\t<name>\t<count>\t<sum>\t<max>\t<p50>\t<p95>\t<p99>\t<buckets,comma-separated>`
    pub fn render_machine(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter\t{name}\t{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge\t{name}\t{v}\n"));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "histogram\t{name}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                buckets.join(","),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

/// Operation kind of a trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Point lookup.
    Get,
    /// Insert/update.
    Put,
    /// Tombstone write.
    Delete,
    /// Range scan.
    Scan,
    /// Memtable flush.
    Flush,
    /// UnsortedStore → SortedStore merge (or LSM compaction).
    Merge,
    /// Size-based (scan-optimization) merge.
    ScanMerge,
    /// Value-log garbage collection.
    Gc,
    /// Partition split.
    Split,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceOp::Get => "get",
            TraceOp::Put => "put",
            TraceOp::Delete => "delete",
            TraceOp::Scan => "scan",
            TraceOp::Flush => "flush",
            TraceOp::Merge => "merge",
            TraceOp::ScanMerge => "scan_merge",
            TraceOp::Gc => "gc",
            TraceOp::Split => "split",
        };
        f.write_str(s)
    }
}

/// Where an operation resolved (reads) or how it ended (everything else).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Read answered by a memtable (active or sealed).
    Memtable,
    /// Read answered by the UnsortedStore (hash index or table scan).
    Unsorted,
    /// Read answered by the SortedStore with the value inline.
    Sorted,
    /// Read answered by the SortedStore via a value-log pointer.
    Vlog,
    /// Read found nothing.
    Miss,
    /// Non-read operation completed.
    Done,
    /// Operation failed.
    Failed,
}

impl fmt::Display for TraceOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceOutcome::Memtable => "memtable",
            TraceOutcome::Unsorted => "unsorted",
            TraceOutcome::Sorted => "sorted",
            TraceOutcome::Vlog => "vlog",
            TraceOutcome::Miss => "miss",
            TraceOutcome::Done => "done",
            TraceOutcome::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// One structured operation event. `Copy` on purpose: pushing an event
/// never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading at operation start (microseconds).
    pub at_micros: u64,
    /// Operation duration (microseconds).
    pub dur_micros: u64,
    /// Operation kind.
    pub op: TraceOp,
    /// Resolution tier / completion outcome.
    pub outcome: TraceOutcome,
    /// Partition the operation touched (0 for single-partition engines).
    pub partition: u32,
    /// Op-specific size: value bytes for get/put, items for scan, 0 else.
    pub bytes: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}us {} p{} -> {} ({}us, {}B)",
            self.at_micros, self.op, self.partition, self.outcome, self.dur_micros, self.bytes
        )
    }
}

/// Bounded in-memory ring of [`TraceEvent`]s. Oldest events are dropped
/// once the ring is full; the drop count is retained.
pub struct TraceRing {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let mut buf = self.buf.lock().expect("trace ring poisoned");
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(ev);
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace ring poisoned").len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    fn clear(&self) {
        self.buf.lock().expect("trace ring poisoned").clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum Family {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// The metrics registry: a named set of counter/gauge/histogram families,
/// a clock, and a trace ring. Registration takes a mutex; the recording
/// hot paths are lock-free.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    origin: Instant,
    has_manual_clock: AtomicBool,
    clock: RwLock<Option<MetricsClock>>,
    families: Mutex<BTreeMap<String, Family>>,
    trace: TraceRing,
}

impl MetricsRegistry {
    /// Create a registry. `enabled = false` turns every record call into
    /// a branch on one atomic bool; `trace_capacity = 0` disables tracing.
    pub fn new(enabled: bool, trace_capacity: usize) -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(enabled)),
            origin: Instant::now(),
            has_manual_clock: AtomicBool::new(false),
            clock: RwLock::new(None),
            families: Mutex::new(BTreeMap::new()),
            trace: TraceRing::new(trace_capacity),
        })
    }

    /// True when recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Current clock reading in microseconds. Returns `0` while disabled
    /// (timing is pointless when nothing records), the manual clock when
    /// one is installed, the real monotonic clock otherwise.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return 0;
        }
        if self.has_manual_clock.load(Ordering::Acquire) {
            if let Some(clock) = self.clock.read().expect("clock lock poisoned").as_ref() {
                return clock();
            }
        }
        self.origin.elapsed().as_micros() as u64
    }

    /// Install a manual clock (microseconds, arbitrary monotonic origin)
    /// or restore the real clock with `None`. The determinism contract:
    /// every timed operation reads the clock exactly twice, so a clock
    /// advancing a fixed step per reading yields exact durations.
    pub fn set_clock(&self, clock: Option<MetricsClock>) {
        let mut guard = self.clock.write().expect("clock lock poisoned");
        self.has_manual_clock
            .store(clock.is_some(), Ordering::Release);
        *guard = clock;
    }

    /// Register (or fetch) a counter family.
    pub fn counter(&self, name: &str) -> Counter {
        let mut fams = self.families.lock().expect("families lock poisoned");
        let cell = match fams
            .entry(name.to_string())
            .or_insert_with(|| Family::Counter(Arc::new(AtomicU64::new(0))))
        {
            Family::Counter(c) => c.clone(),
            _ => panic!("metric family {name:?} already registered with a different kind"),
        };
        Counter {
            enabled: self.enabled.clone(),
            cell,
        }
    }

    /// Register (or fetch) a gauge family.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut fams = self.families.lock().expect("families lock poisoned");
        let cell = match fams
            .entry(name.to_string())
            .or_insert_with(|| Family::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Family::Gauge(c) => c.clone(),
            _ => panic!("metric family {name:?} already registered with a different kind"),
        };
        Gauge {
            enabled: self.enabled.clone(),
            cell,
        }
    }

    /// Register (or fetch) a histogram family.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut fams = self.families.lock().expect("families lock poisoned");
        let core = match fams
            .entry(name.to_string())
            .or_insert_with(|| Family::Histogram(Arc::new(HistogramCore::new())))
        {
            Family::Histogram(c) => c.clone(),
            _ => panic!("metric family {name:?} already registered with a different kind"),
        };
        Histogram {
            enabled: self.enabled.clone(),
            core,
        }
    }

    /// Names of every registered family, sorted.
    pub fn family_names(&self) -> Vec<String> {
        self.families
            .lock()
            .expect("families lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Push a trace event (no-op while disabled or with capacity 0).
    #[inline]
    pub fn trace_event(&self, ev: TraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.trace.push(ev);
    }

    /// The trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Snapshot every family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fams = self.families.lock().expect("families lock poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, fam) in fams.iter() {
            match fam {
                Family::Counter(c) => {
                    snap.counters
                        .insert(name.clone(), c.load(Ordering::Relaxed));
                }
                Family::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
                }
                Family::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            max: h.max.load(Ordering::Relaxed),
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Zero every family and clear the trace ring. Counters are cleared
    /// one by one (quiesce concurrent writers for an exact zero point).
    pub fn reset(&self) {
        let fams = self.families.lock().expect("families lock poisoned");
        for fam in fams.values() {
            match fam {
                Family::Counter(c) | Family::Gauge(c) => c.store(0, Ordering::Relaxed),
                Family::Histogram(h) => h.reset(),
            }
        }
        self.trace.clear();
    }

    /// Human-readable report of the current snapshot.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

// ---------------------------------------------------------------------
// Standard engine families
// ---------------------------------------------------------------------

/// The standard per-engine metric families, pre-registered so every
/// engine reports the same names. Tier counters satisfy the invariant
/// `reads == reads_hit_memtable + reads_hit_unsorted + reads_hit_sorted
/// + reads_miss` (vlog-resolved reads count into `reads_hit_sorted` and
/// additionally into `reads_vlog_resolved`).
#[derive(Clone)]
pub struct EngineMetrics {
    /// Point-lookup latency.
    pub get_latency: Histogram,
    /// Put/delete latency (one sample per call).
    pub put_latency: Histogram,
    /// Scan latency (one sample per call).
    pub scan_latency: Histogram,
    /// Flush duration (one sample per flushed table).
    pub flush_latency: Histogram,
    /// Merge/compaction duration.
    pub merge_latency: Histogram,
    /// GC pass duration.
    pub gc_latency: Histogram,
    /// Partition-split duration.
    pub split_latency: Histogram,
    /// Completed point lookups (hits + misses).
    pub reads: Counter,
    /// Reads answered by a memtable.
    pub reads_hit_memtable: Counter,
    /// Reads answered by the UnsortedStore.
    pub reads_hit_unsorted: Counter,
    /// Reads answered by the SortedStore (inline or via vlog).
    pub reads_hit_sorted: Counter,
    /// Reads that found nothing.
    pub reads_miss: Counter,
    /// Reads whose value came from a value log (subset of sorted hits).
    pub reads_vlog_resolved: Counter,
    /// Completed put/delete calls.
    pub writes: Counter,
    /// Completed scan calls.
    pub scans: Counter,
    /// Items returned across all scans.
    pub scan_items: Counter,
}

impl EngineMetrics {
    /// Register the standard families in `registry`.
    pub fn new(registry: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            get_latency: registry.histogram("get_latency_us"),
            put_latency: registry.histogram("put_latency_us"),
            scan_latency: registry.histogram("scan_latency_us"),
            flush_latency: registry.histogram("flush_latency_us"),
            merge_latency: registry.histogram("merge_latency_us"),
            gc_latency: registry.histogram("gc_latency_us"),
            split_latency: registry.histogram("split_latency_us"),
            reads: registry.counter("reads"),
            reads_hit_memtable: registry.counter("reads_hit_memtable"),
            reads_hit_unsorted: registry.counter("reads_hit_unsorted"),
            reads_hit_sorted: registry.counter("reads_hit_sorted"),
            reads_miss: registry.counter("reads_miss"),
            reads_vlog_resolved: registry.counter("reads_vlog_resolved"),
            writes: registry.counter("writes"),
            scans: registry.counter("scans"),
            scan_items: registry.counter("scan_items"),
        }
    }

    /// Count one completed read with its tier-resolution outcome.
    pub fn record_read(&self, outcome: TraceOutcome) {
        self.reads.inc();
        match outcome {
            TraceOutcome::Memtable => self.reads_hit_memtable.inc(),
            TraceOutcome::Unsorted => self.reads_hit_unsorted.inc(),
            TraceOutcome::Sorted => self.reads_hit_sorted.inc(),
            TraceOutcome::Vlog => {
                self.reads_hit_sorted.inc();
                self.reads_vlog_resolved.inc();
            }
            _ => self.reads_miss.inc(),
        }
    }

    /// The histogram for a maintenance op kind.
    pub fn maint_histogram(&self, op: TraceOp) -> &Histogram {
        match op {
            TraceOp::Flush => &self.flush_latency,
            TraceOp::ScanMerge | TraceOp::Merge => &self.merge_latency,
            TraceOp::Gc => &self.gc_latency,
            _ => &self.split_latency,
        }
    }
}

/// Build a manual clock for tests: every reading advances by `step_us`
/// and returns the advanced value, so an operation that reads the clock
/// twice observes a duration of exactly `step_us`.
pub fn manual_step_clock(step_us: u64) -> MetricsClock {
    let ticks = AtomicU64::new(0);
    Arc::new(move || ticks.fetch_add(step_us, Ordering::Relaxed) + step_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value lands inside its bucket's range.
        for v in [0u64, 1, 5, 100, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} bucket={i}");
            if i > 0 && i < HISTOGRAM_BUCKETS - 1 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_exact_with_equal_values() {
        let reg = MetricsRegistry::new(true, 0);
        let h = reg.histogram("h");
        for _ in 0..100 {
            h.record(7);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 700);
        assert_eq!(s.max, 7);
        assert_eq!(s.buckets[bucket_index(7)], 100);
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(0.95), 7);
        assert_eq!(s.quantile(0.99), 7);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let reg = MetricsRegistry::new(true, 0);
        let h = reg.histogram("h");
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(100);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(0.9), 1);
        // Ranks past 90 land in the bucket holding 100 ([64, 127], capped
        // at the exact max of 100).
        assert_eq!(s.quantile(0.95), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let mk = |n: u64| {
            let reg = MetricsRegistry::new(true, 0);
            reg.counter("c").add(n);
            reg.gauge("g").set(n);
            let h = reg.histogram("h");
            for v in 0..n {
                h.record(v);
            }
            reg.snapshot()
        };
        let (a, b, c) = (mk(3), mk(10), mk(40));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counters["c"], 53);
        assert_eq!(left.histograms["h"].count, 3 + 10 + 40);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new(false, 16);
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(5);
        g.set(5);
        h.record(5);
        reg.trace_event(TraceEvent {
            at_micros: 0,
            dur_micros: 0,
            op: TraceOp::Get,
            outcome: TraceOutcome::Miss,
            partition: 0,
            bytes: 0,
        });
        assert_eq!(reg.now_micros(), 0);
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.trace().len(), 0);
    }

    #[test]
    fn reset_empties_everything() {
        let reg = MetricsRegistry::new(true, 4);
        reg.counter("c").add(9);
        reg.gauge("g").set(9);
        reg.histogram("h").record(9);
        reg.trace_event(TraceEvent {
            at_micros: 1,
            dur_micros: 2,
            op: TraceOp::Put,
            outcome: TraceOutcome::Done,
            partition: 0,
            bytes: 3,
        });
        assert!(!reg.snapshot().is_empty());
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.is_empty());
        // Families stay registered after reset — only the values clear.
        assert_eq!(
            reg.family_names(),
            vec!["c".to_string(), "g".to_string(), "h".to_string()]
        );
        assert_eq!(reg.trace().len(), 0);
    }

    #[test]
    fn trace_ring_bounded_and_ordered() {
        let reg = MetricsRegistry::new(true, 3);
        for i in 0..10u64 {
            reg.trace_event(TraceEvent {
                at_micros: i,
                dur_micros: 0,
                op: TraceOp::Get,
                outcome: TraceOutcome::Miss,
                partition: 0,
                bytes: 0,
            });
        }
        assert_eq!(reg.trace().len(), 3);
        assert_eq!(reg.trace().capacity(), 3);
        assert_eq!(reg.trace().dropped(), 7);
        let at: Vec<u64> = reg.trace().events().iter().map(|e| e.at_micros).collect();
        assert_eq!(at, vec![7, 8, 9]);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let reg = MetricsRegistry::new(true, 0);
        reg.set_clock(Some(manual_step_clock(5)));
        assert_eq!(reg.now_micros(), 5);
        assert_eq!(reg.now_micros(), 10);
        reg.set_clock(None);
        // Real clock restored; just check it does not panic.
        let _ = reg.now_micros();
    }

    #[test]
    fn machine_report_covers_all_families() {
        let reg = MetricsRegistry::new(true, 0);
        let em = EngineMetrics::new(&reg);
        em.record_read(TraceOutcome::Vlog);
        em.record_read(TraceOutcome::Miss);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["reads"], 2);
        assert_eq!(snap.counters["reads_hit_sorted"], 1);
        assert_eq!(snap.counters["reads_vlog_resolved"], 1);
        assert_eq!(snap.counters["reads_miss"], 1);
        let text = snap.render_text();
        let machine = snap.render_machine();
        for name in reg.family_names() {
            assert!(text.contains(&name), "text report missing {name}");
            assert!(machine.contains(&name), "machine report missing {name}");
        }
    }

    #[test]
    fn engine_metrics_read_invariant() {
        let reg = MetricsRegistry::new(true, 0);
        let em = EngineMetrics::new(&reg);
        for (i, o) in [
            TraceOutcome::Memtable,
            TraceOutcome::Unsorted,
            TraceOutcome::Sorted,
            TraceOutcome::Vlog,
            TraceOutcome::Miss,
        ]
        .iter()
        .enumerate()
        {
            for _ in 0..=i {
                em.record_read(*o);
            }
        }
        let reads = em.reads.value();
        let sum = em.reads_hit_memtable.value()
            + em.reads_hit_unsorted.value()
            + em.reads_hit_sorted.value()
            + em.reads_miss.value();
        assert_eq!(reads, sum);
    }
}
