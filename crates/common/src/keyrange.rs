//! Inclusive key ranges used for SSTable metadata, partition boundaries,
//! and compaction overlap tests.

/// An inclusive range `[smallest, largest]` over user keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    smallest: Vec<u8>,
    largest: Vec<u8>,
}

impl KeyRange {
    /// Build a range; callers must pass `smallest <= largest`.
    pub fn new(smallest: impl Into<Vec<u8>>, largest: impl Into<Vec<u8>>) -> Self {
        let (smallest, largest) = (smallest.into(), largest.into());
        debug_assert!(smallest <= largest, "inverted key range");
        KeyRange { smallest, largest }
    }

    /// The smallest key (inclusive).
    pub fn smallest(&self) -> &[u8] {
        &self.smallest
    }

    /// The largest key (inclusive).
    pub fn largest(&self) -> &[u8] {
        &self.largest
    }

    /// True if `key` lies within the range.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.smallest.as_slice() <= key && key <= self.largest.as_slice()
    }

    /// True if the two inclusive ranges intersect.
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        self.smallest.as_slice() <= other.largest.as_slice()
            && other.smallest.as_slice() <= self.largest.as_slice()
    }

    /// Extend this range to also cover `key`.
    pub fn extend_to(&mut self, key: &[u8]) {
        if key < self.smallest.as_slice() {
            self.smallest = key.to_vec();
        }
        if key > self.largest.as_slice() {
            self.largest = key.to_vec();
        }
    }

    /// The union of two ranges.
    pub fn union(&self, other: &KeyRange) -> KeyRange {
        KeyRange {
            smallest: std::cmp::min(&self.smallest, &other.smallest).clone(),
            largest: std::cmp::max(&self.largest, &other.largest).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(a: &[u8], b: &[u8]) -> KeyRange {
        KeyRange::new(a.to_vec(), b.to_vec())
    }

    #[test]
    fn contains_boundaries() {
        let kr = r(b"b", b"d");
        assert!(kr.contains(b"b"));
        assert!(kr.contains(b"c"));
        assert!(kr.contains(b"d"));
        assert!(!kr.contains(b"a"));
        assert!(!kr.contains(b"e"));
    }

    #[test]
    fn overlap_cases() {
        let kr = r(b"c", b"f");
        assert!(kr.overlaps(&r(b"a", b"c"))); // touch at left edge
        assert!(kr.overlaps(&r(b"f", b"z"))); // touch at right edge
        assert!(kr.overlaps(&r(b"d", b"e"))); // nested
        assert!(kr.overlaps(&r(b"a", b"z"))); // covering
        assert!(!kr.overlaps(&r(b"a", b"b")));
        assert!(!kr.overlaps(&r(b"g", b"h")));
    }

    #[test]
    fn extend_and_union() {
        let mut kr = r(b"c", b"d");
        kr.extend_to(b"a");
        kr.extend_to(b"z");
        kr.extend_to(b"m"); // no-op
        assert_eq!(kr, r(b"a", b"z"));
        assert_eq!(r(b"a", b"c").union(&r(b"b", b"z")), r(b"a", b"z"));
    }

    proptest! {
        #[test]
        fn prop_overlap_symmetric(a in 0u8..200, b in 0u8..200, c in 0u8..200, d in 0u8..200) {
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            let (c, d) = if c <= d { (c, d) } else { (d, c) };
            let r1 = r(&[a], &[b]);
            let r2 = r(&[c], &[d]);
            prop_assert_eq!(r1.overlaps(&r2), r2.overlaps(&r1));
            // Overlap iff some point is in both.
            let brute = (0u8..=255).any(|x| r1.contains(&[x]) && r2.contains(&[x]));
            prop_assert_eq!(r1.overlaps(&r2), brute);
        }
    }
}
