#![warn(missing_docs)]

//! Workload generation for the experiment harness: YCSB-style key
//! distributions (uniform / zipfian / scrambled-zipfian / latest /
//! sequential), the six YCSB core workloads, and ratio-based mixed
//! read-write streams (the paper's Exp#2).
//!
//! All generators are deterministic given a seed, so every experiment run
//! replays the identical operation stream against every engine.

pub mod dist;
pub mod ops;
pub mod ycsb;

pub use dist::{
    KeyChooser, LatestChooser, ScrambledZipfian, SequentialChooser, UniformChooser, Zipfian,
};
pub use ops::{format_key, make_value, Op, OpKind};
pub use ycsb::{MixedWorkload, YcsbKind, YcsbWorkload};
