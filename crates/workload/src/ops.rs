//! Operation stream vocabulary and key/value materialization.

/// Kinds of operations a workload can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Overwrite an existing record.
    Update,
    /// Insert a new record (extends the keyspace).
    Insert,
    /// Range scan.
    Scan,
    /// Read-modify-write (YCSB F).
    ReadModifyWrite,
}

/// One concrete operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read `key`.
    Read(Vec<u8>),
    /// Write `key` with a fresh value of the workload's value size.
    Update(Vec<u8>),
    /// Insert a brand-new `key`.
    Insert(Vec<u8>),
    /// Scan `len` records starting at `key`.
    Scan(Vec<u8>, usize),
    /// Read then write back `key`.
    ReadModifyWrite(Vec<u8>),
}

/// Materialize record index `i` as a fixed-width key (`user` + zero-padded
/// decimal), matching YCSB's key shape and preserving numeric order.
pub fn format_key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

/// Deterministic pseudo-random value of `len` bytes derived from `(i, tag)`.
pub fn make_value(i: u64, tag: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(tag.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        | 1;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_preserve_order() {
        assert!(format_key(1) < format_key(2));
        assert!(format_key(99) < format_key(100));
        assert_eq!(format_key(0).len(), format_key(u32::MAX as u64).len());
    }

    #[test]
    fn values_deterministic_and_sized() {
        assert_eq!(make_value(7, 1, 100), make_value(7, 1, 100));
        assert_ne!(make_value(7, 1, 100), make_value(7, 2, 100));
        assert_ne!(make_value(7, 1, 100), make_value(8, 1, 100));
        assert_eq!(make_value(0, 0, 1234).len(), 1234);
        assert_eq!(make_value(0, 0, 0).len(), 0);
    }
}
