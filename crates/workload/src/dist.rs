//! Key-choice distributions (YCSB-compatible).

use unikv_common::rng::DetRng;

/// Chooses the next record index from `[0, n)` where `n` may grow as
/// inserts happen.
pub trait KeyChooser: Send {
    /// Next record index given the current record count.
    fn next_key(&mut self, rng: &mut DetRng, record_count: u64) -> u64;
    /// Distribution name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Uniform over all records.
#[derive(Debug, Default, Clone)]
pub struct UniformChooser;

impl KeyChooser for UniformChooser {
    fn next_key(&mut self, rng: &mut DetRng, record_count: u64) -> u64 {
        rng.u64_in(0..record_count.max(1))
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Sequential (used for ordered loads).
#[derive(Debug, Default, Clone)]
pub struct SequentialChooser {
    next: u64,
}

impl KeyChooser for SequentialChooser {
    fn next_key(&mut self, _rng: &mut DetRng, record_count: u64) -> u64 {
        let k = self.next % record_count.max(1);
        self.next += 1;
        k
    }
    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Zipfian over ranks `0..n` (rank 0 most popular), Gray et al.'s
/// incremental algorithm as used in YCSB. Handles a growing `n` by
/// extending zeta incrementally.
#[derive(Debug, Clone)]
pub struct Zipfian {
    theta: f64,
    n: u64,
    zeta_n: f64,
    zeta2theta: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Standard YCSB skew constant.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Create over `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let zeta2theta = Self::zeta_static(2, theta);
        let zeta_n = Self::zeta_static(n, theta);
        let mut z = Zipfian {
            theta,
            n,
            zeta_n,
            zeta2theta,
            alpha: 1.0 / (1.0 - theta),
            eta: 0.0,
        };
        z.recompute_eta();
        z
    }

    fn zeta_static(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn recompute_eta(&mut self) {
        self.eta = (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zeta_n);
    }

    fn extend_to(&mut self, n: u64) {
        if n <= self.n {
            return;
        }
        for i in (self.n + 1)..=n {
            self.zeta_n += 1.0 / (i as f64).powf(self.theta);
        }
        self.n = n;
        self.recompute_eta();
    }

    /// Draw a rank in `[0, n)`.
    pub fn next_rank(&mut self, rng: &mut DetRng, n: u64) -> u64 {
        self.extend_to(n.max(1));
        let u: f64 = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

impl KeyChooser for Zipfian {
    fn next_key(&mut self, rng: &mut DetRng, record_count: u64) -> u64 {
        self.next_rank(rng, record_count)
    }
    fn name(&self) -> &'static str {
        "zipfian"
    }
}

/// Zipfian with ranks scrambled across the keyspace by a hash, so hot keys
/// are spread instead of clustered at the low end (YCSB's default).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Create over `n` items with the default skew.
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, Zipfian::DEFAULT_THETA),
        }
    }
}

impl KeyChooser for ScrambledZipfian {
    fn next_key(&mut self, rng: &mut DetRng, record_count: u64) -> u64 {
        let rank = self.inner.next_rank(rng, record_count);
        // FNV-style scramble, then fold into range.
        let h = unikv_hash(rank);
        h % record_count.max(1)
    }
    fn name(&self) -> &'static str {
        "scrambled-zipfian"
    }
}

/// "Latest" distribution: zipfian over recency — most requests target the
/// most recently inserted records (YCSB workload D).
#[derive(Debug, Clone)]
pub struct LatestChooser {
    inner: Zipfian,
}

impl LatestChooser {
    /// Create over `n` initial items.
    pub fn new(n: u64) -> Self {
        LatestChooser {
            inner: Zipfian::new(n, Zipfian::DEFAULT_THETA),
        }
    }
}

impl KeyChooser for LatestChooser {
    fn next_key(&mut self, rng: &mut DetRng, record_count: u64) -> u64 {
        let n = record_count.max(1);
        let back = self.inner.next_rank(rng, n);
        n - 1 - back
    }
    fn name(&self) -> &'static str {
        "latest"
    }
}

#[inline]
fn unikv_hash(v: u64) -> u64 {
    // splitmix64 finalizer.
    let mut h = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_covers_range() {
        let mut c = UniformChooser;
        let mut r = rng();
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = c.next_key(&mut r, 10);
            assert!(k < 10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sequential_wraps() {
        let mut c = SequentialChooser::default();
        let mut r = rng();
        let keys: Vec<u64> = (0..7).map(|_| c.next_key(&mut r, 3)).collect();
        assert_eq!(keys, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut c = Zipfian::new(10_000, Zipfian::DEFAULT_THETA);
        let mut r = rng();
        let n = 100_000;
        let mut top100 = 0;
        for _ in 0..n {
            let k = c.next_key(&mut r, 10_000);
            assert!(k < 10_000);
            if k < 100 {
                top100 += 1;
            }
        }
        // With theta=0.99, the top 1% of ranks should draw a large share.
        let share = top100 as f64 / n as f64;
        assert!(share > 0.3, "zipfian not skewed enough: {share}");
    }

    #[test]
    fn zipfian_extends_with_growth() {
        let mut c = Zipfian::new(10, Zipfian::DEFAULT_THETA);
        let mut r = rng();
        for count in [10u64, 100, 1000] {
            for _ in 0..100 {
                assert!(c.next_key(&mut r, count) < count);
            }
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut c = ScrambledZipfian::new(10_000);
        let mut r = rng();
        // The hottest key should not be rank 0 after scrambling (with
        // overwhelming probability); just confirm keys span the range.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let k = c.next_key(&mut r, 10_000);
            if k < 5_000 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn latest_prefers_recent() {
        let mut c = LatestChooser::new(10_000);
        let mut r = rng();
        let n = 10_000;
        let mut recent = 0;
        for _ in 0..n {
            let k = c.next_key(&mut r, 10_000);
            if k >= 9_900 {
                recent += 1;
            }
        }
        assert!(
            recent as f64 / n as f64 > 0.3,
            "latest not recency-skewed: {recent}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = || {
            let mut c = ScrambledZipfian::new(1000);
            let mut r = rng();
            (0..50)
                .map(|_| c.next_key(&mut r, 1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
