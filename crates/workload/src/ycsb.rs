//! YCSB core workloads A–F and ratio-based mixed read/write streams.

use crate::dist::{KeyChooser, LatestChooser, ScrambledZipfian, UniformChooser};
use crate::ops::{format_key, Op};
use unikv_common::rng::DetRng;

/// The six YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbKind {
    /// 50% reads / 50% updates, zipfian.
    A,
    /// 95% reads / 5% updates, zipfian.
    B,
    /// 100% reads, zipfian.
    C,
    /// 95% reads / 5% inserts, latest distribution.
    D,
    /// 95% scans / 5% inserts, zipfian, scan length ≤ 100.
    E,
    /// 50% reads / 50% read-modify-writes, zipfian.
    F,
}

impl YcsbKind {
    /// All six, in order.
    pub fn all() -> [YcsbKind; 6] {
        [
            YcsbKind::A,
            YcsbKind::B,
            YcsbKind::C,
            YcsbKind::D,
            YcsbKind::E,
            YcsbKind::F,
        ]
    }

    /// Workload label ("A".."F").
    pub fn name(&self) -> &'static str {
        match self {
            YcsbKind::A => "A",
            YcsbKind::B => "B",
            YcsbKind::C => "C",
            YcsbKind::D => "D",
            YcsbKind::E => "E",
            YcsbKind::F => "F",
        }
    }

    /// Human description used in experiment output.
    pub fn description(&self) -> &'static str {
        match self {
            YcsbKind::A => "50% read / 50% update, zipfian",
            YcsbKind::B => "95% read / 5% update, zipfian",
            YcsbKind::C => "100% read, zipfian",
            YcsbKind::D => "95% read / 5% insert, latest",
            YcsbKind::E => "95% scan / 5% insert, zipfian",
            YcsbKind::F => "50% read / 50% RMW, zipfian",
        }
    }
}

/// Generator for one YCSB workload over `record_count` preloaded records.
pub struct YcsbWorkload {
    kind: YcsbKind,
    rng: DetRng,
    chooser: Box<dyn KeyChooser>,
    record_count: u64,
    max_scan_len: usize,
}

impl YcsbWorkload {
    /// Create a generator; `record_count` is the preloaded record count.
    pub fn new(kind: YcsbKind, record_count: u64, seed: u64) -> Self {
        let chooser: Box<dyn KeyChooser> = match kind {
            YcsbKind::D => Box::new(LatestChooser::new(record_count)),
            _ => Box::new(ScrambledZipfian::new(record_count)),
        };
        YcsbWorkload {
            kind,
            rng: DetRng::seed_from_u64(seed),
            chooser,
            record_count,
            max_scan_len: 100,
        }
    }

    /// Current record count (grows with inserts).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let p: f64 = self.rng.next_f64();
        match self.kind {
            YcsbKind::A => {
                if p < 0.5 {
                    self.read()
                } else {
                    self.update()
                }
            }
            YcsbKind::B => {
                if p < 0.95 {
                    self.read()
                } else {
                    self.update()
                }
            }
            YcsbKind::C => self.read(),
            YcsbKind::D => {
                if p < 0.95 {
                    self.read()
                } else {
                    self.insert()
                }
            }
            YcsbKind::E => {
                if p < 0.95 {
                    self.scan()
                } else {
                    self.insert()
                }
            }
            YcsbKind::F => {
                if p < 0.5 {
                    self.read()
                } else {
                    self.rmw()
                }
            }
        }
    }

    fn pick(&mut self) -> Vec<u8> {
        let k = self.chooser.next_key(&mut self.rng, self.record_count);
        format_key(k)
    }

    fn read(&mut self) -> Op {
        Op::Read(self.pick())
    }

    fn update(&mut self) -> Op {
        Op::Update(self.pick())
    }

    fn insert(&mut self) -> Op {
        let k = self.record_count;
        self.record_count += 1;
        Op::Insert(format_key(k))
    }

    fn scan(&mut self) -> Op {
        let len = self.rng.usize_in_incl(1..=self.max_scan_len);
        Op::Scan(self.pick(), len)
    }

    fn rmw(&mut self) -> Op {
        Op::ReadModifyWrite(self.pick())
    }
}

/// Ratio-based mixed read/write stream (the paper's Exp#2: read ratios
/// 0%, 25%, 50%, 75%, 100% under a skewed key distribution).
pub struct MixedWorkload {
    rng: DetRng,
    chooser: Box<dyn KeyChooser>,
    record_count: u64,
    read_ratio: f64,
}

impl MixedWorkload {
    /// `read_ratio` in `[0, 1]`; keys zipfian-scrambled unless
    /// `uniform` is set.
    pub fn new(read_ratio: f64, record_count: u64, uniform: bool, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&read_ratio));
        let chooser: Box<dyn KeyChooser> = if uniform {
            Box::new(UniformChooser)
        } else {
            Box::new(ScrambledZipfian::new(record_count))
        };
        MixedWorkload {
            rng: DetRng::seed_from_u64(seed),
            chooser,
            record_count,
            read_ratio,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let k = self.chooser.next_key(&mut self.rng, self.record_count);
        if self.rng.next_f64() < self.read_ratio {
            Op::Read(format_key(k))
        } else {
            Op::Update(format_key(k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(kind: YcsbKind, n: usize) -> (usize, usize, usize, usize, usize) {
        let mut w = YcsbWorkload::new(kind, 10_000, 7);
        let (mut r, mut u, mut i, mut s, mut f) = (0, 0, 0, 0, 0);
        for _ in 0..n {
            match w.next_op() {
                Op::Read(_) => r += 1,
                Op::Update(_) => u += 1,
                Op::Insert(_) => i += 1,
                Op::Scan(_, _) => s += 1,
                Op::ReadModifyWrite(_) => f += 1,
            }
        }
        (r, u, i, s, f)
    }

    #[test]
    fn workload_mixes_match_spec() {
        let n = 20_000;
        let tol = |x: usize, expect: f64| {
            let got = x as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "ratio {got} != expected {expect}"
            );
        };
        let (r, u, i, s, f) = mix_of(YcsbKind::A, n);
        tol(r, 0.5);
        tol(u, 0.5);
        assert_eq!(i + s + f, 0);

        let (r, u, ..) = mix_of(YcsbKind::B, n);
        tol(r, 0.95);
        tol(u, 0.05);

        let (r, u, i, s, f) = mix_of(YcsbKind::C, n);
        assert_eq!((u, i, s, f), (0, 0, 0, 0));
        assert_eq!(r, n);

        let (r, _, i, ..) = mix_of(YcsbKind::D, n);
        tol(r, 0.95);
        tol(i, 0.05);

        let (_, _, i, s, _) = mix_of(YcsbKind::E, n);
        tol(s, 0.95);
        tol(i, 0.05);

        let (r, _, _, _, f) = mix_of(YcsbKind::F, n);
        tol(r, 0.5);
        tol(f, 0.5);
    }

    #[test]
    fn inserts_extend_keyspace() {
        let mut w = YcsbWorkload::new(YcsbKind::D, 100, 3);
        let before = w.record_count();
        for _ in 0..1000 {
            w.next_op();
        }
        assert!(w.record_count() > before);
    }

    #[test]
    fn scan_lengths_bounded() {
        let mut w = YcsbWorkload::new(YcsbKind::E, 1000, 3);
        for _ in 0..2000 {
            if let Op::Scan(_, len) = w.next_op() {
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn mixed_ratios() {
        for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut w = MixedWorkload::new(ratio, 1000, false, 9);
            let n = 10_000;
            let reads = (0..n)
                .filter(|_| matches!(w.next_op(), Op::Read(_)))
                .count();
            let got = reads as f64 / n as f64;
            assert!((got - ratio).abs() < 0.02, "ratio {got} != {ratio}");
        }
    }

    #[test]
    fn deterministic_streams() {
        let ops = |seed| {
            let mut w = YcsbWorkload::new(YcsbKind::A, 1000, seed);
            (0..100).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(5), ops(5));
        assert_ne!(ops(5), ops(6));
    }
}
