#![warn(missing_docs)]

//! Workspace umbrella for the UniKV reproduction: hosts the runnable
//! `examples/` and the cross-crate integration tests under `tests/`, and
//! re-exports the pieces a downstream user typically needs so a single
//! dependency (`unikv-suite`) pulls the whole stack.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured results.

pub use unikv;
pub use unikv_common;
pub use unikv_env;
pub use unikv_hashstore;
pub use unikv_lsm;
pub use unikv_workload;

/// The types most programs need, in one import.
///
/// ```
/// use unikv_suite::prelude::*;
///
/// let db = UniKv::open(MemEnv::shared(), "/db", UniKvOptions::default()).unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
/// ```
pub mod prelude {
    pub use unikv::{ScanItem, SizeRouter, SizeRouterOptions, UniKv, UniKvOptions, WriteBatch};
    pub use unikv_common::{Error, Result};
    pub use unikv_env::fs::FsEnv;
    pub use unikv_env::mem::MemEnv;
    pub use unikv_lsm::{Baseline, LsmDb, LsmOptions};
}
